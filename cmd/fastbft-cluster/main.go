// Command fastbft-cluster runs a real multi-replica consensus cluster over
// authenticated TCP on this machine: n replicas decide a value, then a
// replicated key-value store executes a write workload, reporting
// throughput and latency.
//
// Usage:
//
//	fastbft-cluster -f 1 -t 1            # n = 4 replicas
//	fastbft-cluster -f 2 -t 1 -ops 500   # n = 7 replicas, 500 KV writes
//	fastbft-cluster -f 1 -t 1 -procs     # one OS process per replica,
//	                                     # served to a networked TCP client,
//	                                     # with a replica crash mid-workload
//	fastbft-cluster -f 1 -t 1 -procs -byz garbage
//	                                     # one replica process runs the
//	                                     # garbage adversary (docs/THREAT_MODEL.md)
//
// With -procs, the KV phase spawns one child process per replica (this same
// binary, re-executed in replica mode). Each child binds a replica-to-replica
// listener and a client-facing listener, keeps a durable data directory
// (write-ahead log + checkpoint snapshots), the parent distributes the peer
// address table over the children's stdin, and then drives the workload as a
// real external client: one OS process executing commands against replicas in
// other OS processes over TCP, confirmed by f+1 matching replies per write.
// Mid-workload, one replica process is kill -9'd, later restarted from its
// data directory at its old addresses, and then a different replica is
// killed — leaving exactly n−f alive, so continued progress proves the
// recovered replica rejoined consensus.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	fastbft "repro"
	"repro/internal/byz"
	"repro/internal/msg"
	"repro/internal/sigcrypto"
	"repro/internal/transport"
)

// replicaEnv marks a process as a replica child of a -procs run. It is
// checked before anything else so the same binary (or test binary, via
// TestMain) serves both roles.
const replicaEnv = "FASTBFT_CLUSTER_REPLICA"

func main() {
	if os.Getenv(replicaEnv) == "1" {
		if err := replicaMain(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "fastbft-cluster replica:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fastbft-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fastbft-cluster", flag.ContinueOnError)
	f := fs.Int("f", 1, "Byzantine faults tolerated")
	t := fs.Int("t", 1, "fast-path fault threshold (1..f)")
	ops := fs.Int("ops", 200, "KV write operations for the throughput phase")
	procs := fs.Bool("procs", false, "run the KV phase as one OS process per replica, serving a networked client")
	timeout := fs.Duration("timeout", 2*time.Minute, "hard deadline for the multi-process phase (-procs)")
	seed := fs.Int64("seed", 1, "deterministic key seed shared with the replica processes (-procs)")
	byzName := fs.String("byz", "", "corrupt one replica process with the named adversary (requires -procs); see docs/THREAT_MODEL.md. Known: garbage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *byzName != "" {
		if !*procs {
			return fmt.Errorf("-byz requires -procs (the adversary is its own OS process)")
		}
		if *byzName != "garbage" {
			return fmt.Errorf("unknown adversary %q (known: garbage)", *byzName)
		}
	}
	cfg := fastbft.GeneralizedConfig(*f, *t)
	fmt.Printf("cluster: %s (paper minimum for f=%d, t=%d)\n", cfg, *f, *t)
	if *byzName != "" {
		// With a corrupted replica the single-shot warm-up makes no sense
		// (its process slot would have to play honest); go straight to the
		// adversarial multi-process phase.
		fmt.Printf("byzantine: replica process %d runs the %q adversary\n", byzProcID, *byzName)
		return runMultiProcess(cfg, *f, *t, *ops, *seed, *timeout, *byzName)
	}

	// Phase 1: single-shot consensus over TCP.
	keys, err := fastbft.GenerateKeys(cfg.N)
	if err != nil {
		return err
	}
	nodes := make([]*fastbft.Node, cfg.N)
	addrs := make([]string, cfg.N)
	decided := make(chan fastbft.Decision, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n, err := fastbft.NewNode(fastbft.NodeConfig{
			Cluster:    cfg,
			Self:       fastbft.ProcessID(i),
			Keys:       keys,
			ListenAddr: "127.0.0.1:0",
			Input:      fastbft.Value(fmt.Sprintf("proposal-from-p%d", i+1)),
			OnDecide:   func(d fastbft.Decision) { decided <- d },
		})
		if err != nil {
			return err
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	start := time.Now()
	for _, n := range nodes {
		if err := n.SetPeers(addrs); err != nil {
			return err
		}
		if err := n.Start(); err != nil {
			return err
		}
	}
	var first fastbft.Decision
	for i := 0; i < cfg.N; i++ {
		select {
		case d := <-decided:
			if i == 0 {
				first = d
			}
			if !d.Value.Equal(first.Value) {
				return fmt.Errorf("disagreement: %s vs %s", d.Value, first.Value)
			}
		case <-time.After(30 * time.Second):
			return fmt.Errorf("timeout: %d of %d replicas decided", i, cfg.N)
		}
	}
	fmt.Printf("consensus: all %d replicas decided %s in view %s via the %s path (%.1fms wall clock)\n",
		cfg.N, first.Value, first.View, first.Path, float64(time.Since(start).Microseconds())/1000)
	for _, n := range nodes {
		_ = n.Close()
	}

	if *procs {
		return runMultiProcess(cfg, *f, *t, *ops, *seed, *timeout, "")
	}
	return runSingleProcess(cfg, *ops)
}

// runSingleProcess is the original KV phase: every replica in this process,
// driven through an in-process handle.
func runSingleProcess(cfg fastbft.Config, ops int) error {
	keys, err := fastbft.GenerateKeys(cfg.N)
	if err != nil {
		return err
	}
	reps := make([]*fastbft.KVReplica, cfg.N)
	addrs := make([]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		r, err := fastbft.NewKVReplica(fastbft.KVReplicaConfig{
			Cluster:    cfg,
			Self:       fastbft.ProcessID(i),
			Keys:       keys,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			return err
		}
		reps[i] = r
		addrs[i] = r.Addr()
	}
	defer func() {
		for _, r := range reps {
			_ = r.Close()
		}
	}()
	for _, r := range reps {
		if err := r.SetPeers(addrs); err != nil {
			return err
		}
		if err := r.Start(); err != nil {
			return err
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := reps[0].Set(fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i)); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		done := true
		for _, r := range reps {
			if r.AppliedOps() < uint64(ops) {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kv timeout: replica applied %d of %d ops", reps[0].AppliedOps(), ops)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	fmt.Printf("kv store: %d replicated writes on %d replicas in %.2fs (%.0f ops/s)\n",
		ops, cfg.N, elapsed.Seconds(), float64(ops)/elapsed.Seconds())
	v, ok := reps[cfg.N-1].Get(fmt.Sprintf("key-%d", ops-1))
	fmt.Printf("kv check: last key on last replica = %q (present=%v)\n", v, ok)
	return nil
}

// child is one spawned replica process and the pipes the parent drives it
// through.
type child struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Scanner
}

// drillCkptInterval is the checkpoint interval of the multi-process
// cluster: it enables state transfer (the restarted replica catches up on
// what it missed while dead) and WAL truncation in the children's data
// directories.
const drillCkptInterval = 8

// byzProcID is the process the -byz adversary corrupts: the leader of view 1
// of every log slot, so its attacks land on the fast path rather than on
// slots it could never propose in.
const byzProcID = 1

// byzGarbageSlots is how many log slots the "garbage" adversary drives to a
// malformed decision. The correct replica processes report their
// MalformedBatches counter on shutdown and the parent requires exactly this
// many on every one of them.
const byzGarbageSlots = 2

// runMultiProcess is the networked KV phase: one OS process per replica
// (each durable, with its own data directory), the parent process acting
// as a real external client over TCP. The crash drill: a third of the way
// in, one replica process is killed outright (kill -9 — no flush, no
// goodbye); at two thirds it is restarted from its data directory at its
// old addresses, and a *different* replica is killed. From then on only
// n−f replicas are alive, so every further confirmed write proves the
// recovered replica rejoined consensus for real — progress is impossible
// without it.
// With byzName non-empty there is no crash drill — the fault budget is spent
// on replica byzProcID, which runs the named adversary instead of an honest
// replica. The workload then proves liveness under active Byzantine behavior
// (every write still confirmed by f+1 correct replicas), and on shutdown the
// parent collects each correct replica's STATS line and requires the
// adversary's footprint (the MalformedBatches counter) to be exactly what the
// attack dictates — evidence the malformed decisions were counted, logged,
// and skipped rather than silently lost.
func runMultiProcess(cfg fastbft.Config, f, t, ops int, seed int64, timeout time.Duration, byzName string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dataRoot, err := os.MkdirTemp("", "fastbft-cluster-data-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dataRoot) }()
	deadline := time.Now().Add(timeout)
	children := make([]*child, cfg.N)
	killAll := func() {
		for _, c := range children {
			if c != nil && c.cmd.Process != nil {
				_ = c.cmd.Process.Kill()
			}
		}
	}
	defer func() {
		killAll()
		for _, c := range children {
			if c != nil {
				_ = c.cmd.Wait()
			}
		}
	}()
	// spawn launches the replica-child process i. addr/clientAddr pin the
	// listen addresses (a restarted replica must come back where its peers
	// expect it); empty strings let the OS pick.
	spawn := func(i int, addr, clientAddr string) (*child, error) {
		if addr == "" {
			addr, clientAddr = "127.0.0.1:0", "127.0.0.1:0"
		}
		cargs := []string{
			"-self", strconv.Itoa(i),
			"-f", strconv.Itoa(f),
			"-t", strconv.Itoa(t),
			"-seed", strconv.FormatInt(seed, 10),
			"-ckpt", strconv.Itoa(drillCkptInterval),
			"-addr", addr,
			"-clientaddr", clientAddr,
			"-datadir", filepath.Join(dataRoot, fmt.Sprintf("replica-%d", i)),
		}
		if byzName != "" {
			if i == byzProcID {
				cargs = append(cargs, "-byz", byzName)
			} else {
				// Correct replicas report the adversary's footprint on
				// shutdown; the flag carries the expected malformed count so
				// the child knows when its counter is final. The corrupted
				// view-1 leader never proposes honestly, so every slot pays
				// one view change — a short timer keeps the drill brisk.
				cargs = append(cargs, "-byzslots", strconv.Itoa(byzGarbageSlots),
					"-basetimeout", "150ms")
			}
		}
		cmd := exec.Command(exe, cargs...)
		cmd.Env = append(os.Environ(), replicaEnv+"=1")
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}, nil
	}
	for i := 0; i < cfg.N; i++ {
		c, err := spawn(i, "", "")
		if err != nil {
			return err
		}
		children[i] = c
	}
	// Watchdog: whatever goes wrong below — a child that never reports, a
	// client that never settles — killing the children unblocks every read
	// and bounds the phase by the -timeout flag. Armed only now, after the
	// spawn loop fully published the children slice it iterates.
	watchdog := time.AfterFunc(time.Until(deadline), killAll)
	defer watchdog.Stop()

	// Collect each child's bound addresses, distribute the peer table, wait
	// for every replica to come up.
	peerAddrs := make([]string, cfg.N)
	clientAddrs := make([]string, cfg.N)
	for i, c := range children {
		fields, err := c.expect("ADDRS", 2)
		if err != nil {
			return fmt.Errorf("replica process %d: %w", i, err)
		}
		peerAddrs[i], clientAddrs[i] = fields[0], fields[1]
	}
	peerLine := "PEERS " + strings.Join(peerAddrs, " ") + "\n"
	ready := func(i int) error {
		if _, err := io.WriteString(children[i].stdin, peerLine); err != nil {
			return fmt.Errorf("replica process %d: %w", i, err)
		}
		if _, err := children[i].expect("READY", 0); err != nil {
			return fmt.Errorf("replica process %d: %w", i, err)
		}
		return nil
	}
	for i := range children {
		if err := ready(i); err != nil {
			return err
		}
	}
	fmt.Printf("spawned %d replica processes (data dirs under %s), client listeners at %s\n",
		cfg.N, dataRoot, strings.Join(clientAddrs, " "))

	// The parent is now nothing but a client: it holds no replica handles,
	// only the address book and the cluster's public identities.
	keys := fastbft.GenerateTestKeys(cfg.N, seed)
	cl, err := fastbft.NewKVNetworkClient("cluster-client", 500*time.Millisecond, cfg, keys, clientAddrs)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()

	// Both drill victims are non-leaders (view-1 leads every slot's fast
	// path, and t=1 keeps the fast path available with one fault).
	crash1 := cfg.N - 1
	crash2 := cfg.N - 2
	killAt := ops / 3
	restartAt := 2 * ops / 3
	if byzName != "" {
		// No crash drill: the fault budget is spent on the adversary.
		killAt, restartAt = -1, -1
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		switch i {
		case killAt:
			if err := children[crash1].cmd.Process.Kill(); err != nil {
				return fmt.Errorf("killing replica process %d: %w", crash1, err)
			}
			_ = children[crash1].cmd.Wait()
			fmt.Printf("crash: killed replica process %d after %d writes\n", crash1, i)
		case restartAt:
			// The replica comes back from its data directory, at the same
			// addresses its peers still dial.
			c, err := spawn(crash1, peerAddrs[crash1], clientAddrs[crash1])
			if err != nil {
				return fmt.Errorf("restarting replica process %d: %w", crash1, err)
			}
			children[crash1] = c
			fields, err := c.expect("ADDRS", 2)
			if err != nil {
				return fmt.Errorf("restarted replica %d: %w", crash1, err)
			}
			if fields[0] != peerAddrs[crash1] || fields[1] != clientAddrs[crash1] {
				return fmt.Errorf("restarted replica %d bound %v, want its old addresses", crash1, fields)
			}
			if err := ready(crash1); err != nil {
				return err
			}
			fmt.Printf("recovery: restarted replica process %d from its data dir after %d writes\n", crash1, i)
			// With the recovered replica back, lose a different one: from
			// here on progress requires the restarted replica to vote.
			if err := children[crash2].cmd.Process.Kill(); err != nil {
				return fmt.Errorf("killing replica process %d: %w", crash2, err)
			}
			_ = children[crash2].cmd.Wait()
			fmt.Printf("crash: killed replica process %d — further progress needs the recovered replica\n", crash2)
		}
		key, val := fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i)
		res, err := cl.Set(key, val)
		if err != nil {
			return fmt.Errorf("networked write %d: %w", i, err)
		}
		if res != val {
			return fmt.Errorf("networked write %d: confirmed %q, want %q", i, res, val)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("multi-process phase exceeded -timeout %s", timeout)
		}
	}
	elapsed := time.Since(start)
	if byzName != "" {
		fmt.Printf("networked kv: %d writes from an external client process, each confirmed by f+1 correct replicas over TCP, with replica process %d running the %q adversary throughout (%.2fs, %.0f ops/s)\n",
			ops, byzProcID, byzName, elapsed.Seconds(), float64(ops)/elapsed.Seconds())
		// Shut the correct replicas down one by one and collect their STATS
		// line: every one of them must have decided, counted, and skipped
		// exactly the malformed slots the adversary drove.
		for i, c := range children {
			if i == byzProcID {
				continue
			}
			_ = c.stdin.Close()
			fields, err := c.expect("STATS", 1)
			if err != nil {
				return fmt.Errorf("replica process %d stats: %w", i, err)
			}
			stats := make(map[string]string, len(fields))
			for _, kv := range fields {
				if k, v, ok := strings.Cut(kv, "="); ok {
					stats[k] = v
				}
			}
			malformed, err := strconv.Atoi(stats["malformed"])
			if err != nil {
				return fmt.Errorf("replica process %d: bad STATS line %v", i, fields)
			}
			if malformed != byzGarbageSlots {
				return fmt.Errorf("replica process %d counted %d malformed batches, want %d", i, malformed, byzGarbageSlots)
			}
			fmt.Printf("replica process %d: malformed=%d applied=%s — the garbage decisions were counted and skipped\n", i, malformed, stats["applied"])
		}
		_ = children[byzProcID].stdin.Close()
		return nil
	}
	fmt.Printf("networked kv: %d writes from an external client process, each confirmed by f+1 replicas over TCP, with replica %d kill -9'd and restarted from its data dir and replica %d crashed after it (%.2fs, %.0f ops/s)\n",
		ops, crash1, crash2, elapsed.Seconds(), float64(ops)/elapsed.Seconds())

	// Graceful shutdown: closing stdin tells a child to stop.
	for i, c := range children {
		if i != crash2 {
			_ = c.stdin.Close()
		}
	}
	return nil
}

// expect reads lines from the child until one starts with the given tag,
// requiring at least argc fields after it.
func (c *child) expect(tag string, argc int) ([]string, error) {
	for c.out.Scan() {
		fields := strings.Fields(c.out.Text())
		if len(fields) > 0 && fields[0] == tag {
			if len(fields)-1 < argc {
				return nil, fmt.Errorf("%s line carries %d fields, want %d", tag, len(fields)-1, argc)
			}
			return fields[1:], nil
		}
	}
	if err := c.out.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("replica exited before %s", tag)
}

// replicaMain is the child role of a -procs run: one KV replica with a
// replica-to-replica listener and a client-facing listener, coordinated with
// the parent over stdin/stdout (ADDRS out, PEERS in, READY out, EOF to stop).
func replicaMain(args []string) error {
	fs := flag.NewFlagSet("fastbft-cluster-replica", flag.ContinueOnError)
	self := fs.Int("self", 0, "this replica's process ID")
	f := fs.Int("f", 1, "Byzantine faults tolerated")
	t := fs.Int("t", 1, "fast-path fault threshold")
	seed := fs.Int64("seed", 1, "deterministic key seed shared with the parent")
	ckpt := fs.Uint64("ckpt", 0, "checkpoint interval (0 disables)")
	addr := fs.String("addr", "127.0.0.1:0", "replica-to-replica listen address (pinned on restart)")
	clientAddr := fs.String("clientaddr", "127.0.0.1:0", "client-facing listen address (pinned on restart)")
	dataDir := fs.String("datadir", "", "data directory for the write-ahead log and snapshots (empty = in-memory)")
	syncMode := fs.String("sync", "group", "WAL fsync policy: none, group, or always")
	baseTimeout := fs.Duration("basetimeout", 0, "per-slot view-1 timer (0 = the replica default)")
	byzName := fs.String("byz", "", "run the named adversary instead of an honest replica")
	byzSlots := fs.Int("byzslots", 0, "expected malformed-batch count; >0 makes the replica report STATS on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fastbft.GeneralizedConfig(*f, *t)
	if *byzName != "" {
		return byzReplicaMain(cfg, fastbft.ProcessID(*self), *seed, *addr, *clientAddr, *byzName)
	}
	keys := fastbft.GenerateTestKeys(cfg.N, *seed)
	r, err := fastbft.NewKVReplica(fastbft.KVReplicaConfig{
		Cluster:            cfg,
		Self:               fastbft.ProcessID(*self),
		Keys:               keys,
		ListenAddr:         *addr,
		ClientListenAddr:   *clientAddr,
		CheckpointInterval: *ckpt,
		DataDir:            *dataDir,
		SyncMode:           *syncMode,
		BaseTimeout:        *baseTimeout,
	})
	if err != nil {
		return err
	}
	defer func() { _ = r.Close() }()
	fmt.Printf("ADDRS %s %s\n", r.Addr(), r.ClientAddr())

	in := bufio.NewScanner(os.Stdin)
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 || fields[0] != "PEERS" {
			continue
		}
		if len(fields)-1 != cfg.N {
			return fmt.Errorf("PEERS line carries %d addresses, want %d", len(fields)-1, cfg.N)
		}
		if err := r.SetPeers(fields[1:]); err != nil {
			return err
		}
		if err := r.Start(); err != nil {
			return err
		}
		fmt.Println("READY")
		break
	}
	// Serve until the parent closes our stdin (or kills us).
	for in.Scan() {
	}
	if *byzSlots > 0 {
		// The parent reads a STATS line before this process exits. The
		// malformed counter is final once the apply frontier passed the
		// attacked prefix; commands keep applying for a moment after the
		// client's last confirmation, so poll briefly instead of sampling.
		deadline := time.Now().Add(15 * time.Second)
		for r.Stats().MalformedBatches < uint64(*byzSlots) && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		st := r.Stats()
		fmt.Printf("STATS malformed=%d applied=%d reproposed=%d\n",
			st.MalformedBatches, st.AppliedCommands, st.Reproposed)
	}
	return in.Err()
}

// byzReplicaMain is the corrupted-replica role of a -procs -byz run: the
// same stdio coordination protocol as an honest child (ADDRS out, PEERS in,
// READY out, EOF to stop), but the process slot is driven by a byz.Driver
// running the named adversarial behavior over a real authenticated TCP
// endpoint, with the process's real cluster key. The client-facing address
// is served by a real authenticated listener whose handler discards every
// request unanswered — the corrupted replica proves its identity to clients
// and then stonewalls them, so the f+1 matching-reply rule must be met by
// correct replicas alone.
func byzReplicaMain(cfg fastbft.Config, self fastbft.ProcessID, seed int64, addr, clientAddr, name string) error {
	var behavior byz.Behavior
	switch name {
	case "garbage":
		behavior = &byz.GarbageProposer{Slots: byzGarbageSlots}
	default:
		return fmt.Errorf("unknown adversary %q", name)
	}
	scheme := sigcrypto.NewEd25519Deterministic(cfg.N, seed)
	tr, err := transport.NewTCP(transport.TCPConfig{
		Self:       self,
		N:          cfg.N,
		ListenAddr: addr,
		Signer:     scheme.Signer(self),
		Verifier:   scheme.Verifier(),
	})
	if err != nil {
		return err
	}
	ln, err := transport.NewClientListener(transport.ClientListenerConfig{
		Self:       self,
		ListenAddr: clientAddr,
		Signer:     scheme.Signer(self),
		Handler:    func(*msg.Request, func(*msg.Reply)) error { return nil },
	})
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer func() { _ = ln.Close() }()
	if err := ln.Start(); err != nil {
		_ = tr.Close()
		return err
	}
	drv, err := byz.NewDriver(byz.DriverConfig{
		Cluster:   cfg,
		Self:      self,
		Signer:    scheme.Signer(self),
		Verifier:  scheme.Verifier(),
		Transport: tr,
		Behavior:  behavior,
	})
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer func() { _ = drv.Close() }()
	fmt.Printf("ADDRS %s %s\n", tr.Addr(), ln.Addr())

	in := bufio.NewScanner(os.Stdin)
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 || fields[0] != "PEERS" {
			continue
		}
		if len(fields)-1 != cfg.N {
			return fmt.Errorf("PEERS line carries %d addresses, want %d", len(fields)-1, cfg.N)
		}
		if err := tr.SetPeers(fields[1:]); err != nil {
			return err
		}
		if err := drv.Start(); err != nil {
			return err
		}
		fmt.Println("READY")
		break
	}
	for in.Scan() {
	}
	return in.Err()
}
