// Command fastbft-cluster runs a real multi-replica consensus cluster over
// authenticated TCP on this machine: n replicas decide a value, then a
// replicated key-value store executes a write workload, reporting
// throughput and latency.
//
// Usage:
//
//	fastbft-cluster -f 1 -t 1            # n = 4 replicas
//	fastbft-cluster -f 2 -t 1 -ops 500   # n = 7 replicas, 500 KV writes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	fastbft "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fastbft-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fastbft-cluster", flag.ContinueOnError)
	f := fs.Int("f", 1, "Byzantine faults tolerated")
	t := fs.Int("t", 1, "fast-path fault threshold (1..f)")
	ops := fs.Int("ops", 200, "KV write operations for the throughput phase")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fastbft.GeneralizedConfig(*f, *t)
	fmt.Printf("cluster: %s (paper minimum for f=%d, t=%d)\n", cfg, *f, *t)

	// Phase 1: single-shot consensus over TCP.
	keys, err := fastbft.GenerateKeys(cfg.N)
	if err != nil {
		return err
	}
	nodes := make([]*fastbft.Node, cfg.N)
	addrs := make([]string, cfg.N)
	decided := make(chan fastbft.Decision, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n, err := fastbft.NewNode(fastbft.NodeConfig{
			Cluster:    cfg,
			Self:       fastbft.ProcessID(i),
			Keys:       keys,
			ListenAddr: "127.0.0.1:0",
			Input:      fastbft.Value(fmt.Sprintf("proposal-from-p%d", i+1)),
			OnDecide:   func(d fastbft.Decision) { decided <- d },
		})
		if err != nil {
			return err
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	start := time.Now()
	for _, n := range nodes {
		if err := n.SetPeers(addrs); err != nil {
			return err
		}
		if err := n.Start(); err != nil {
			return err
		}
	}
	var first fastbft.Decision
	for i := 0; i < cfg.N; i++ {
		select {
		case d := <-decided:
			if i == 0 {
				first = d
			}
			if !d.Value.Equal(first.Value) {
				return fmt.Errorf("disagreement: %s vs %s", d.Value, first.Value)
			}
		case <-time.After(30 * time.Second):
			return fmt.Errorf("timeout: %d of %d replicas decided", i, cfg.N)
		}
	}
	fmt.Printf("consensus: all %d replicas decided %s in view %s via the %s path (%.1fms wall clock)\n",
		cfg.N, first.Value, first.View, first.Path, float64(time.Since(start).Microseconds())/1000)
	for _, n := range nodes {
		_ = n.Close()
	}

	// Phase 2: replicated key-value store throughput.
	keys2, err := fastbft.GenerateKeys(cfg.N)
	if err != nil {
		return err
	}
	reps := make([]*fastbft.KVReplica, cfg.N)
	addrs2 := make([]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		r, err := fastbft.NewKVReplica(fastbft.KVReplicaConfig{
			Cluster:    cfg,
			Self:       fastbft.ProcessID(i),
			Keys:       keys2,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			return err
		}
		reps[i] = r
		addrs2[i] = r.Addr()
	}
	defer func() {
		for _, r := range reps {
			_ = r.Close()
		}
	}()
	for _, r := range reps {
		if err := r.SetPeers(addrs2); err != nil {
			return err
		}
		if err := r.Start(); err != nil {
			return err
		}
	}
	start = time.Now()
	for i := 0; i < *ops; i++ {
		if err := reps[0].Set(fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i)); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		done := true
		for _, r := range reps {
			if r.AppliedOps() < uint64(*ops) {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kv timeout: replica applied %d of %d ops", reps[0].AppliedOps(), *ops)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	fmt.Printf("kv store: %d replicated writes on %d replicas in %.2fs (%.0f ops/s)\n",
		*ops, cfg.N, elapsed.Seconds(), float64(*ops)/elapsed.Seconds())
	v, ok := reps[cfg.N-1].Get(fmt.Sprintf("key-%d", *ops-1))
	fmt.Printf("kv check: last key on last replica = %q (present=%v)\n", v, ok)
	return nil
}
