// Command benchjson converts `go test -bench` text output into a JSON
// report, so CI can archive benchmark results as a machine-readable
// artifact and the performance trajectory of the repository is recorded
// run over run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -o BENCH.json
//
// The report carries the environment header lines (goos, goarch, pkg, cpu)
// and one entry per benchmark result line with every reported metric
// (ns/op, B/op, allocs/op, and any custom ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name including sub-benchmark path, without the
	// GOMAXPROCS suffix (BenchmarkX/n=4-8 → BenchmarkX/n=4).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (8 in the example above; 1 if absent).
	Procs int `json:"procs"`
	// Pkg is the package the benchmark belongs to (the closest preceding
	// "pkg:" header line).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line, e.g. "ns/op": 52341.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	// Env holds the environment header lines: goos, goarch, cpu.
	Env map[string]string `json:"env"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// MetricsSnapshot, when -metrics names a file, embeds the metrics
	// registry snapshot the pipelined benchmark wrote there (see
	// FASTBFT_BENCH_METRICS in bench_test.go) — the observability layer's
	// own view of the run, stage-latency histograms included.
	MetricsSnapshot json.RawMessage `json:"metrics_snapshot,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	metrics := flag.String("metrics", "", "metrics snapshot JSON file to embed in the report (optional)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *metrics != "" {
		snap, err := os.ReadFile(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if !json.Valid(snap) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *metrics)
			os.Exit(1)
		}
		rep.MetricsSnapshot = json.RawMessage(snap)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parse consumes `go test -bench` output. Unrecognized lines (test chatter,
// PASS/ok trailers) are skipped, so the tool can sit directly on a piped
// `go test ./...` run.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Env: make(map[string]string)}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   	     123	      4567 ns/op	      89 B/op	       2 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// splitProcs strips the -GOMAXPROCS suffix from a benchmark name. The
// suffix is the digits after the last dash; sub-benchmark names may
// themselves contain dashes and digits, so only a trailing all-digit
// segment counts.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 1
	}
	return name[:i], procs
}
