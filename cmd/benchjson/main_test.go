package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkSMRThroughput/n=4-8         	       1	   1234567 ns/op	  345678 B/op	    2345 allocs/op
BenchmarkCodec/encode-propose-8      	  500000	      2100 ns/op
BenchmarkTableLatency/f=1/steps-8    	       1	         2.000 steps
PASS
ok  	repro	1.234s
some unrelated chatter
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["goos"] != "linux" || rep.Env["goarch"] != "amd64" || rep.Env["cpu"] != "AMD EPYC 7B13" {
		t.Fatalf("env parse: %v", rep.Env)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSMRThroughput/n=4" || b.Procs != 8 || b.Pkg != "repro" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Iterations != 1 || b.Metrics["ns/op"] != 1234567 || b.Metrics["B/op"] != 345678 || b.Metrics["allocs/op"] != 2345 {
		t.Fatalf("first benchmark metrics: %+v", b)
	}

	// Dashes inside sub-benchmark names survive; only the trailing
	// GOMAXPROCS segment is stripped.
	if got := rep.Benchmarks[1].Name; got != "BenchmarkCodec/encode-propose" {
		t.Fatalf("second benchmark name: %q", got)
	}
	if rep.Benchmarks[1].Iterations != 500000 {
		t.Fatalf("second benchmark iterations: %d", rep.Benchmarks[1].Iterations)
	}

	// Custom ReportMetric units parse like the built-ins.
	if rep.Benchmarks[2].Metrics["steps"] != 2 {
		t.Fatalf("custom metric: %+v", rep.Benchmarks[2].Metrics)
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := `BenchmarkBroken  notanumber  10 ns/op
BenchmarkAlsoBroken
BenchmarkOK-4  7  10 ns/op
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("parsed %+v, want only BenchmarkOK", rep.Benchmarks)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX/n=5-1-16", "BenchmarkX/n=5-1", 16},
		{"BenchmarkX-", "BenchmarkX-", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}
