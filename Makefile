# Make targets mirror the CI pipeline (.github/workflows/ci.yml) exactly, so
# "it passes locally" and "it passes in CI" mean the same thing.

GO ?= go

# BENCH_JSON is where bench-json writes its report; the current report is
# committed at the repo root (and CI uploads the regenerated one as a
# workflow artifact), so the perf trajectory is recorded run over run.
# FUZZTIME is the per-target budget of the fuzz target.
BENCH_JSON ?= BENCH_PR10.json
FUZZTIME ?= 30s

.PHONY: all build test race bench bench-json fuzz smoke leaderkill fmt fmt-check vet doc-check byz recovery-race clean

all: build test

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector
race:
	$(GO) test -race ./...

## bench: one-iteration smoke pass over every benchmark (compiles and runs
## each benchmark once; use `go test -bench=. ./...` for real measurements)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-json: run every benchmark once with -benchmem (including the SMR
## throughput benchmark), then re-run the durable-throughput sweep and the
## sharded-throughput sweep with real iteration counts (a single iteration
## is far too noisy to read a sync-mode or shard-scaling ratio from), and
## convert the combined output to a JSON report via cmd/benchjson, so the
## perf trajectory is recorded run over run (separate steps, not a pipe: a
## pipe would report the converter's exit status and let a failing
## benchmark run slip through CI green). The pipelined run also dumps its
## metrics-registry snapshot (FASTBFT_BENCH_METRICS), which benchjson embeds
## in the report — stage-latency histograms travel with the numbers
bench-json:
	FASTBFT_BENCH_METRICS=$(BENCH_JSON).metrics $(GO) test -run '^$$' -bench . -skip '^BenchmarkSMRDurableThroughput$$|^BenchmarkSMRShardedThroughput$$' -benchtime 1x -benchmem ./... > $(BENCH_JSON).txt
	$(GO) test -run '^$$' -bench '^BenchmarkSMRDurableThroughput$$' -benchtime 30x . >> $(BENCH_JSON).txt
	$(GO) test -run '^$$' -bench '^BenchmarkSMRShardedThroughput$$' -benchtime 20x . >> $(BENCH_JSON).txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) -metrics $(BENCH_JSON).metrics < $(BENCH_JSON).txt
	rm -f $(BENCH_JSON).txt $(BENCH_JSON).metrics

## fuzz: run every fuzz target for FUZZTIME each (Go allows one -fuzz
## pattern per invocation, hence one line per target)
fuzz:
	$(GO) test ./internal/smr -run '^$$' -fuzz '^FuzzDecodeBatch$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/msg -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/msg -run '^$$' -fuzz '^FuzzDecodeReply$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeClientFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzDecodeWALRecord$$' -fuzztime $(FUZZTIME)

## smoke: boot a 4-replica cluster as one OS process per replica (each with
## a durable data dir), serving a networked TCP client; one replica is
## kill -9'd mid-workload, restarted from its data dir, and a different
## replica is killed after it — so finishing proves the recovered replica
## rejoined consensus; the command's own -timeout watchdog kills the
## children if anything hangs. The second run repeats the same drill with
## every process hosting two consensus groups over one transport and one
## data dir (the second victim leads one of the groups, so that group's
## writes ride the windowed view change), driven by the shard-aware client.
## Both runs carry -metrics: the parent scrapes every live child's HTTP
## introspection endpoint mid-workload and fails if a child's decided-slot
## counters disagree with its own Stats on shutdown
smoke:
	$(GO) run ./cmd/fastbft-cluster -f 1 -t 1 -procs -metrics -ops 40 -timeout 120s
	$(GO) run ./cmd/fastbft-cluster -f 1 -t 1 -procs -shards 2 -metrics -ops 40 -timeout 120s

## leaderkill: boot the same multi-process cluster and kill -9 the view-1
## leader process mid-workload, never restarting it — the rest of the
## workload must commit through the windowed view change, the first
## post-kill write must confirm within the recovery bound, and every
## surviving replica must report regime-timer suspicions on shutdown
leaderkill:
	$(GO) run ./cmd/fastbft-cluster -f 1 -t 1 -procs -leaderkill -metrics -ops 30 -timeout 120s

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean (CI uses this)
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: run go vet over every package
vet:
	$(GO) vet ./...

## doc-check: fail if any package lacks a package doc comment (CI runs this
## alongside vet; cmd/doccheck is the scanner)
doc-check:
	$(GO) run ./cmd/doccheck

## byz: the Byzantine adversary suite under the race detector — the five
## lockstep SMR attack scenarios of internal/byz, each under both resilience
## shapes (n=5f−1 fast and n=3f+1 slow), plus the multi-process drills where
## one replica OS process runs the garbage or the equivocate adversary
## against a networked client (see docs/THREAT_MODEL.md for the taxonomy)
byz:
	$(GO) test -race -run 'TestByz' ./internal/byz
	$(GO) test -race -count=1 -run 'TestRunMultiProcessByzantine|TestRunMultiProcessEquivocate' ./cmd/fastbft-cluster

## recovery-race: the crash-recovery and torn-write suites under the race
## detector (CI runs this as its own step; the paths mix goroutines,
## fsync ordering, and process state, so interleavings deserve extra dice)
recovery-race:
	$(GO) test -race -count=2 -run 'Durable|TornWrite|Recover|WALRecord|Checkpoint' ./internal/storage ./internal/smr
	$(GO) test -race -run 'TestKVReplicaDurableRestart' .

## clean: drop build and test caches scoped to this module, plus any
## leftover replica data directories from local runs (in a sharded run the
## per-group WALs and snapshots live as g<k>- namespaced files inside these
## same per-replica directories, so the patterns cover them too)
clean:
	$(GO) clean ./...
	rm -rf fastbft-cluster-data-* /tmp/fastbft-cluster-data-* 2>/dev/null || true
