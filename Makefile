# Make targets mirror the CI pipeline (.github/workflows/ci.yml) exactly, so
# "it passes locally" and "it passes in CI" mean the same thing.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet clean

all: build test

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector
race:
	$(GO) test -race ./...

## bench: one-iteration smoke pass over every benchmark (compiles and runs
## each benchmark once; use `go test -bench=. ./...` for real measurements)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean (CI uses this)
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: run go vet over every package
vet:
	$(GO) vet ./...

## clean: drop build and test caches scoped to this module
clean:
	$(GO) clean ./...
