package fastbft

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// registryDecided sums the registry's decided-slot counter across a
// replica's groups from one snapshot.
func registryDecided(snap *obs.Snapshot, replica, shards int) uint64 {
	var sum float64
	for g := 0; g < shards; g++ {
		v, _ := snap.Value("fastbft_slots_decided_total",
			obs.Labels{"group": strconv.Itoa(g), "replica": strconv.Itoa(replica)})
		sum += v
	}
	return uint64(sum)
}

// TestMetricsRegistryShardConsistency pins the one-registry invariant of the
// observability layer: the per-group counters in the metrics registry, the
// per-group ShardStats, and the aggregated Stats are three views of the same
// atomics, so on a sharded replica they must agree exactly — per group and
// in aggregate — once the deployment quiesces. Before the registry existed,
// Stats was read field by field from unsynchronized counters; this test is
// the regression fence for that torn-read class of bug.
func TestMetricsRegistryShardConsistency(t *testing.T) {
	cfg := GeneralizedConfig(1, 1) // n = 4
	const shards = 2
	keys := GenerateTestKeys(cfg.N, 31)
	reps, _ := bootShardedCluster(t, cfg, keys, shards)
	defer func() {
		for _, r := range reps {
			_ = r.Close()
		}
	}()

	cl, err := NewKVClient("consistency-client", 2*time.Second, reps...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	const ops = 24
	for i := 0; i < ops; i++ {
		key, want := fmt.Sprintf("ck-%d", i), fmt.Sprintf("cv-%d", i)
		if got, err := cl.Set(key, want); err != nil || got != want {
			t.Fatalf("write %d: got %q, err %v", i, got, err)
		}
	}

	for i, r := range reps {
		// Decisions can still be landing for a moment after the last client
		// confirmation (window slots deciding no-ops, followers catching
		// up), and the two reads below are not one atomic observation — so
		// poll until the registry view and the Stats view settle on the same
		// numbers, and only then require exact agreement everywhere.
		deadline := time.Now().Add(30 * time.Second)
		var snap *obs.Snapshot
		var st ReplicaStats
		for {
			snap = r.Metrics().Snapshot()
			st = r.Stats()
			if registryDecided(snap, i, shards) == st.DecidedSlots &&
				st.AppliedCommands == ops {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d: registry decided %d never settled on Stats decided %d (applied %d, want %d)",
					i, registryDecided(snap, i, shards), st.DecidedSlots, st.AppliedCommands, ops)
			}
			time.Sleep(5 * time.Millisecond)
		}

		var shardDecided, shardApplied, regApplied uint64
		for g := 0; g < shards; g++ {
			gs := r.ShardStats(g)
			gl := obs.Labels{"group": strconv.Itoa(g), "replica": strconv.Itoa(i)}
			d, ok := snap.Value("fastbft_slots_decided_total", gl)
			if !ok {
				t.Fatalf("replica %d group %d: decided counter not in the registry", i, g)
			}
			a, ok := snap.Value("fastbft_commands_applied_total", gl)
			if !ok {
				t.Fatalf("replica %d group %d: applied counter not in the registry", i, g)
			}
			// Per-group: the registry counter and the ShardStats field must
			// be the very same number.
			if uint64(d) != gs.DecidedSlots {
				t.Fatalf("replica %d group %d: registry decided %d, ShardStats decided %d",
					i, g, uint64(d), gs.DecidedSlots)
			}
			if uint64(a) != gs.AppliedCommands {
				t.Fatalf("replica %d group %d: registry applied %d, ShardStats applied %d",
					i, g, uint64(a), gs.AppliedCommands)
			}
			shardDecided += gs.DecidedSlots
			shardApplied += gs.AppliedCommands
			regApplied += uint64(a)
		}
		if shardDecided != st.DecidedSlots {
			t.Fatalf("replica %d: per-group decided sum %d, aggregate Stats %d", i, shardDecided, st.DecidedSlots)
		}
		if shardApplied != st.AppliedCommands || regApplied != st.AppliedCommands {
			t.Fatalf("replica %d: applied views disagree: shards %d, registry %d, Stats %d",
				i, shardApplied, regApplied, st.AppliedCommands)
		}
	}
}

// TestMetricsEndpointLiveScrape drives a workload against a real TCP cluster
// while scraping one replica's opt-in HTTP introspection endpoint — the
// Prometheus text form and the JSON snapshot — and requires the counters to
// be live (decided slots grow between scrapes) and the staged request tracer
// to have carried batches all the way to "replied".
func TestMetricsEndpointLiveScrape(t *testing.T) {
	cfg := GeneralizedConfig(1, 1) // n = 4
	keys := GenerateTestKeys(cfg.N, 37)
	reps := make([]*KVReplica, cfg.N)
	addrs := make([]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c := KVReplicaConfig{
			Cluster:    cfg,
			Self:       ProcessID(i),
			Keys:       keys,
			ListenAddr: "127.0.0.1:0",
		}
		if i == 0 {
			c.MetricsAddr = "127.0.0.1:0"
		}
		r, err := NewKVReplica(c)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
		addrs[i] = r.Addr()
	}
	defer func() {
		for _, r := range reps {
			_ = r.Close()
		}
	}()
	for _, r := range reps {
		if err := r.SetPeers(addrs); err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
	}
	maddr := reps[0].MetricsAddr()
	if maddr == "" {
		t.Fatal("replica 0 has no metrics endpoint despite MetricsAddr being set")
	}
	if reps[1].MetricsAddr() != "" {
		t.Fatal("replica 1 bound a metrics endpoint without opting in")
	}

	scrapeJSON := func() *obs.Snapshot {
		t.Helper()
		resp, err := http.Get("http://" + maddr + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics.json: HTTP %d", resp.StatusCode)
		}
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return &snap
	}

	// Scrape mid-workload: a client goroutine keeps the cluster busy —
	// confirmed writes, so replies flow and the tracer reaches "replied" —
	// while the main goroutine hits the endpoint.
	cl, err := NewKVClient("scrape-client", 2*time.Second, reps...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	const ops = 30
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if _, err := cl.Set(fmt.Sprintf("sk-%d", i), fmt.Sprintf("sv-%d", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	first := scrapeJSON()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	var second *obs.Snapshot
	for {
		second = scrapeJSON()
		if registryDecided(second, 0, 1) > registryDecided(first, 0, 1) &&
			registryDecided(second, 0, 1) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("decided counter never advanced between scrapes: first %d, second %d",
				registryDecided(first, 0, 1), registryDecided(second, 0, 1))
		}
		time.Sleep(5 * time.Millisecond)
	}
	replied, ok := second.HistCount("fastbft_stage_seconds",
		obs.Labels{"group": "0", "replica": "0", "stage": "replied"})
	if !ok || replied == 0 {
		t.Fatalf("stage histogram %q: present=%v count=%d, want live observations", "replied", ok, replied)
	}
	if !second.Has("fastbft_messages_in_total", obs.Labels{"group": "0", "replica": "0", "kind": "propose"}) {
		t.Fatal("per-kind message counters missing from the JSON snapshot")
	}

	// The Prometheus text form must carry the same families, typed and
	// help-annotated, so a stock scraper can ingest it.
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE fastbft_slots_decided_total counter",
		"# TYPE fastbft_stage_seconds histogram",
		"fastbft_stage_seconds_bucket",
		`stage="replied"`,
		"fastbft_net_frames_in_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics text output missing %q", want)
		}
	}
}
